(* Mutual exclusion: the paper's running example (sections 1 and 4).

   - the safety requirement alone underspecifies: a do-nothing protocol
     satisfies it (the "trivial but obviously unsatisfactory
     implementation" of the introduction);
   - Peterson's algorithm satisfies both the safety and the
     accessibility (response/recurrence) requirement;
   - both proof principles are exercised: the invariance rule proves the
     safety part, and failure of the naive (non-strengthened) invariant
     shows why invariants need strengthening.

   Run with: dune exec examples/mutex.exe *)

let show sys name r =
  match r with
  | Fts.Check.Holds -> Format.printf "  %-44s holds@." name
  | Fts.Check.Fails tr ->
      Format.printf "  %-44s FAILS@." name;
      Format.printf "    counterexample:@.    %a@."
        (Fts.Check.pp_trace sys) tr

let () =
  Format.printf "== The underspecification trap ==@.";
  let spec =
    [
      ("mutual-exclusion", "[] !(pc1=2 & pc2=2)");
      ("flag-discipline", "[] (pc1=2 -> flag1=1)");
    ]
  in
  Format.printf "%a@.@."
    Hierarchy.Lint.pp_verdict
    (Hierarchy.Lint.lint_strings spec);

  Format.printf "== A do-nothing protocol satisfies the safety part ==@.";
  let naive = Fts.Models.mutex_do_nothing () in
  show naive "[] !(pc1=2 & pc2=2)"
    (Fts.Check.holds_s naive "[] !(pc1=2 & pc2=2)");
  show naive "[] (pc1=1 -> <> pc1=2)   (accessibility)"
    (Fts.Check.holds_s naive "[] (pc1=1 -> <> pc1=2)");

  Format.printf "@.== Peterson's algorithm ==@.";
  let pet = Fts.Models.peterson () in
  Format.printf "  reachable states: %d@." (Fts.System.n_reachable pet);
  show pet "[] !(pc1=2 & pc2=2)" (Fts.Check.holds_s pet "[] !(pc1=2 & pc2=2)");
  show pet "[] (pc1=1 -> <> pc1=2)" (Fts.Check.holds_s pet "[] (pc1=1 -> <> pc1=2)");
  show pet "[] (pc2=1 -> <> pc2=2)" (Fts.Check.holds_s pet "[] (pc2=1 -> <> pc2=2)");
  (* Precedence (a past-based safety property): process 1 enters only
     after having requested. *)
  show pet "[] (pc1=2 -> O pc1=1)" (Fts.Check.holds_s pet "[] (pc1=2 -> O pc1=1)");

  Format.printf "@.== The invariance proof principle ==@.";
  (* The bare mutual-exclusion assertion is not inductive... *)
  let bare s = not (s.(0) = 2 && s.(1) = 2) in
  let r = Fts.Proof.check_invariance pet bare in
  Format.printf "  bare assertion inductive? %b@."
    (Fts.Proof.invariance_valid r);
  (match r.preserved with
  | Fts.Proof.Refuted (s, tn, s') ->
      Format.printf "    counterexample to preservation: %a --%s--> %a@."
        (Fts.System.pp_state pet) s tn (Fts.System.pp_state pet) s'
  | Fts.Proof.Proved -> ());
  (* ... the strengthened invariant is. *)
  let strengthened s =
    let pc1 = s.(0) and pc2 = s.(1) and f1 = s.(2) and f2 = s.(3) and turn = s.(4) in
    (pc1 >= 1) = (f1 = 1)
    && (pc2 >= 1) = (f2 = 1)
    && (not (pc1 = 2 && pc2 = 2))
    && (not (pc1 = 2 && pc2 >= 1) || turn = 1)
    && (not (pc2 = 2 && pc1 >= 1) || turn = 2)
  in
  Format.printf "  strengthened invariant inductive? %b@."
    (Fts.Proof.invariance_valid (Fts.Proof.check_invariance pet strengthened));

  Format.printf "@.== Termination needs the well-founded principle ==@.";
  let cd = Fts.Models.countdown ~n:5 () in
  show cd "<> (done_=1 & x=0)   (total correctness)"
    (Fts.Check.holds_s cd "<> (done_=1 & x=0)");
  let rr =
    Fts.Proof.check_response cd
      ~p:(fun _ -> true)
      ~q:(fun s -> s.(1) = 1)
      ~phi:(fun s -> s.(1) = 0)
      ~rank:(fun s -> s.(0) + 1)
      ~helpful:(fun s -> if s.(0) > 0 then "dec" else "finish")
  in
  Format.printf "  response rule premises all proved? %b@."
    (Fts.Proof.response_valid rr)
