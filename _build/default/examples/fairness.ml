(* Fairness and the responsiveness ladder (section 4 of the paper).

   Weak fairness is a recurrence property; strong fairness is a simple
   reactivity property — and the difference is observable: a one-resource
   allocator guarantees accessibility under strong fairness of its grant
   transitions but not under weak fairness.

   Run with: dune exec examples/fairness.exe *)

let () =
  Format.printf "== The responsiveness ladder ==@.";
  (* The paper's summary of responsiveness variants, one per class. *)
  let pq = Finitary.Alphabet.of_props [ "p"; "q" ] in
  List.iter
    (fun (reading, s) ->
      match Hierarchy.Property.analyze_string pq s with
      | Some r ->
          Format.printf "  %-34s %-24s -> %s@." s reading
            (Kappa.name r.semantic)
      | None -> Format.printf "  %-34s (not translatable)@." s)
    [
      ("if p initially, q eventually", "p -> <> q");
      ("first p answered once", "<> p -> <> (q & O p)");
      ("every p answered", "[] (p -> <> q)");
      ("p answered by stabilization", "p -> <>[] q");
      ("infinitely many p, inf. many q", "[]<> p -> []<> q");
    ];

  Format.printf "@.== Fairness requirements as formulas ==@.";
  let en_taken = Finitary.Alphabet.of_props [ "en"; "taken" ] in
  let weak = "[]<>(!en | taken)" in
  let strong = "[]<> en -> []<> taken" in
  List.iter
    (fun (name, s) ->
      match Hierarchy.Property.analyze_string en_taken s with
      | Some r ->
          Format.printf "  %-8s %-28s -> %s@." name s (Kappa.name r.semantic)
      | None -> assert false)
    [ ("weak", weak); ("strong", strong) ];

  Format.printf "@.== An allocator that needs strong fairness ==@.";
  let check sys name =
    Format.printf "  %s:@." name;
    List.iter
      (fun s ->
        match Fts.Check.holds_s sys s with
        | Fts.Check.Holds -> Format.printf "    %-28s holds@." s
        | Fts.Check.Fails tr ->
            Format.printf "    %-28s FAILS@." s;
            Format.printf "      starving schedule:@.      %a@."
              (Fts.Check.pp_trace sys) tr)
      [ "[] (c1=1 -> <> c1=2)"; "[] (c2=1 -> <> c2=2)" ]
  in
  check (Fts.Models.allocator ~strong:false ()) "weak fairness on grants";
  check (Fts.Models.allocator ~strong:true ()) "strong fairness on grants";

  Format.printf "@.== Why: the grant transition is only intermittently enabled ==@.";
  Format.printf
    "  Weak fairness only forbids ignoring a continually enabled transition;@.";
  Format.printf
    "  the starving schedule disables grant1 infinitely often (free=0),@.";
  Format.printf
    "  so it is weakly fair.  Strong fairness ([]<>en -> []<>taken) closes@.";
  Format.printf "  the loophole -- at the cost of a higher class in the hierarchy.@."
